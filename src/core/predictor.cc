#include "src/core/predictor.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/ml/cmd.h"
#include "src/ml/transforms.h"
#include "src/obs/trace.h"
#include "src/support/check.h"
#include "src/support/stats.h"

namespace cdmpp {

namespace {

constexpr double kSecondsToMs = 1e3;

// Transformed labels live in a standardized band around kLabelShift; clamping
// extrapolated predictions keeps the (exponential-tailed) inverse Box-Cox
// from exploding on an undertrained model.
double ClampTransformed(double t) {
  return std::clamp(t, kLabelShift - 6.0, kLabelShift + 6.0);
}

// Reshapes [B*L, D] <-> [B, L*D] (row-major, so this is a pure view change).
void PackRowsInto(const Matrix& x, int batch, int seq_len, Matrix* out) {
  CDMPP_CHECK(x.rows() == batch * seq_len);
  CDMPP_CHECK(out->rows() == batch && out->cols() == seq_len * x.cols());
  for (int b = 0; b < batch; ++b) {
    float* dst = out->Row(b);
    for (int t = 0; t < seq_len; ++t) {
      const float* src = x.Row(b * seq_len + t);
      for (int j = 0; j < x.cols(); ++j) {
        dst[t * x.cols() + j] = src[j];
      }
    }
  }
}

Matrix PackRows(const Matrix& x, int batch, int seq_len) {
  Matrix out(batch, seq_len * x.cols());
  PackRowsInto(x, batch, seq_len, &out);
  return out;
}

Matrix UnpackRows(const Matrix& x, int seq_len, int d_model) {
  CDMPP_CHECK(x.cols() == seq_len * d_model);
  Matrix out(x.rows() * seq_len, d_model);
  for (int b = 0; b < x.rows(); ++b) {
    const float* src = x.Row(b);
    for (int t = 0; t < seq_len; ++t) {
      float* dst = out.Row(b * seq_len + t);
      for (int j = 0; j < d_model; ++j) {
        dst[j] = src[t * d_model + j];
      }
    }
  }
  return out;
}

}  // namespace

CdmppPredictor::CdmppPredictor(const PredictorConfig& config)
    : config_(config), rng_(config.seed) {
  input_proj_ = std::make_unique<Linear>(kFeatDim, config_.d_model, &rng_);
  encoder_ = std::make_unique<TransformerEncoder>(config_.d_model, config_.num_heads,
                                                  config_.d_ff, config_.num_layers, &rng_);
  device_mlp_ = std::make_unique<Mlp>(
      std::vector<int>{kDeviceFeatDim, config_.device_hidden_dim, config_.device_embed_dim},
      &rng_);
  std::vector<int> dec_dims;
  dec_dims.push_back(config_.z_dim + config_.device_embed_dim);
  for (int h : config_.decoder_hidden) {
    dec_dims.push_back(h);
  }
  dec_dims.push_back(1);
  decoder_ = std::make_unique<Mlp>(dec_dims, &rng_);
}

void CdmppPredictor::CollectAllParams(std::vector<Param*>* out) {
  input_proj_->CollectParams(out);
  encoder_->CollectParams(out);
  for (auto& [leaves, head] : leaf_heads_) {
    head->CollectParams(out);
  }
  device_mlp_->CollectParams(out);
  decoder_->CollectParams(out);
}

size_t CdmppPredictor::NumParams() {
  std::vector<Param*> params;
  CollectAllParams(&params);
  size_t n = 0;
  for (Param* p : params) {
    n += p->value.size();
  }
  return n;
}

void CdmppPredictor::EnsureHeads(const Dataset& ds, const std::vector<int>& indices) {
  bool added = false;
  for (const auto& [leaves, _] : GroupByLeafCount(ds, indices)) {
    if (leaf_heads_.find(leaves) == leaf_heads_.end()) {
      leaf_heads_[leaves] =
          std::make_unique<Linear>(leaves * config_.d_model, config_.z_dim, &rng_);
      added = true;
    }
  }
  if (added || optimizer_ == nullptr) {
    RebuildOptimizer();
  }
}

void CdmppPredictor::RebuildOptimizer() {
  std::vector<Param*> params;
  CollectAllParams(&params);
  if (config_.optimizer == OptimizerKind::kAdam) {
    optimizer_ = std::make_unique<Adam>(std::move(params), config_.lr, config_.weight_decay);
  } else {
    optimizer_ = std::make_unique<Sgd>(std::move(params), config_.lr);
  }
  if (config_.use_cyclic_lr) {
    scheduler_ =
        std::make_unique<CyclicLr>(config_.lr, config_.max_lr, config_.cyclic_half_cycle);
  } else {
    scheduler_ = std::make_unique<ConstantLr>(config_.lr);
  }
}

CdmppPredictor::BatchForward CdmppPredictor::Forward(const Dataset& ds, const Batch& batch) {
  const int b = static_cast<int>(batch.sample_indices.size());
  const int l = batch.seq_len;
  cached_seq_len_ = l;
  cached_batch_size_ = b;

  Matrix x = BuildFeatureMatrix(ds, batch, scaler_.fitted() ? &scaler_ : nullptr,
                                config_.use_pe, config_.pe_theta);
  Matrix h = encoder_->Forward(input_proj_->Forward(x), l);
  auto head_it = leaf_heads_.find(l);
  CDMPP_CHECK_MSG(head_it != leaf_heads_.end(), "no head for this leaf count");
  Matrix zx = head_it->second->Forward(PackRows(h, b, l));
  cached_zx_ = zx;

  Matrix zv = device_mlp_->Forward(BuildDeviceFeatureMatrix(ds, batch));

  BatchForward out;
  out.z = Matrix(b, config_.z_dim + config_.device_embed_dim);
  for (int i = 0; i < b; ++i) {
    float* row = out.z.Row(i);
    for (int j = 0; j < config_.z_dim; ++j) {
      row[j] = zx.At(i, j);
    }
    for (int j = 0; j < config_.device_embed_dim; ++j) {
      row[config_.z_dim + j] = zv.At(i, j);
    }
  }
  out.preds = decoder_->Forward(out.z);
  return out;
}

void CdmppPredictor::Backward(const Batch& /*batch*/, const Matrix& dpred,
                              const Matrix& dz_extra) {
  // The batch itself is not re-read here: every activation the backward pass
  // needs was cached by the preceding Forward (cached_batch_size_ et al.).
  const int b = cached_batch_size_;
  const int l = cached_seq_len_;
  Matrix dz;
  if (!dpred.empty()) {
    dz = decoder_->Backward(dpred);
  } else {
    dz = Matrix(b, config_.z_dim + config_.device_embed_dim);
  }
  if (!dz_extra.empty()) {
    dz.AddInPlace(dz_extra);
  }

  Matrix dzx(b, config_.z_dim);
  Matrix dzv(b, config_.device_embed_dim);
  for (int i = 0; i < b; ++i) {
    const float* row = dz.Row(i);
    for (int j = 0; j < config_.z_dim; ++j) {
      dzx.At(i, j) = row[j];
    }
    for (int j = 0; j < config_.device_embed_dim; ++j) {
      dzv.At(i, j) = row[config_.z_dim + j];
    }
  }
  device_mlp_->Backward(dzv);
  Matrix dh_flat = leaf_heads_.at(l)->Backward(dzx);
  Matrix dh = UnpackRows(dh_flat, l, config_.d_model);
  input_proj_->Backward(encoder_->Backward(dh));
}

void CdmppPredictor::ClipGradients() {
  if (config_.grad_clip <= 0.0) {
    return;
  }
  std::vector<Param*> params;
  CollectAllParams(&params);
  double norm_sq = 0.0;
  for (Param* p : params) {
    norm_sq += p->grad.SquaredNorm();
  }
  double norm = std::sqrt(norm_sq);
  if (norm > config_.grad_clip) {
    float scale = static_cast<float>(config_.grad_clip / norm);
    for (Param* p : params) {
      p->grad.Scale(scale);
    }
  }
}

std::vector<Matrix> CdmppPredictor::SnapshotParams() {
  std::vector<Param*> params;
  CollectAllParams(&params);
  std::vector<Matrix> snapshot;
  snapshot.reserve(params.size());
  for (Param* p : params) {
    snapshot.push_back(p->value);
  }
  return snapshot;
}

void CdmppPredictor::RestoreParams(const std::vector<Matrix>& snapshot) {
  std::vector<Param*> params;
  CollectAllParams(&params);
  CDMPP_CHECK(params.size() == snapshot.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = snapshot[i];
  }
}

std::vector<Matrix> CdmppPredictor::ExportParams() { return SnapshotParams(); }

void CdmppPredictor::ImportParams(const std::vector<Matrix>& params) {
  RestoreParams(params);
}

TrainStats CdmppPredictor::Pretrain(const Dataset& ds, const std::vector<int>& train,
                                    const std::vector<int>& valid) {
  CDMPP_CHECK(!train.empty());
  EnsureHeads(ds, train);
  if (!valid.empty()) {
    EnsureHeads(ds, valid);
  }
  scaler_.Fit(StackLeafRows(ds, train));
  label_transform_ = MakeLabelTransform(config_.norm);
  std::vector<double> labels_ms = GatherLabels(ds, train);
  for (double& y : labels_ms) {
    y *= kSecondsToMs;
  }
  label_transform_->Fit(labels_ms);
  fitted_ = true;
  return RunTraining(ds, train, valid, config_.epochs, /*alpha=*/0.0, {}, {});
}

TrainStats CdmppPredictor::Finetune(const Dataset& ds, const std::vector<int>& labeled,
                                    const std::vector<int>& source_domain,
                                    const std::vector<int>& target_domain, int epochs) {
  CDMPP_CHECK(fitted_);
  std::vector<int> all = labeled;
  all.insert(all.end(), source_domain.begin(), source_domain.end());
  all.insert(all.end(), target_domain.begin(), target_domain.end());
  EnsureHeads(ds, all);

  // Fine-tuning perturbs a converged model: drop to a small constant LR and
  // keep the best parameters seen on a held-out slice of the labeled set.
  std::vector<int> train = labeled;
  rng_.Shuffle(&train);
  size_t n_valid = std::max<size_t>(1, train.size() / 10);
  std::vector<int> valid(train.end() - static_cast<long>(n_valid), train.end());
  train.resize(train.size() - n_valid);

  auto saved_scheduler = std::move(scheduler_);
  scheduler_ = std::make_unique<ConstantLr>(config_.lr * 0.4);
  TrainStats stats =
      RunTraining(ds, train, valid, epochs, config_.alpha_cmd, source_domain, target_domain);
  scheduler_ = std::move(saved_scheduler);
  return stats;
}

TrainStats CdmppPredictor::RunTraining(const Dataset& ds, const std::vector<int>& train,
                                       const std::vector<int>& valid, int epochs, double alpha,
                                       const std::vector<int>& source_domain,
                                       const std::vector<int>& target_domain) {
  TrainStats stats;
  auto buckets = GroupByLeafCount(ds, train);

  // Pre-transform all labels once.
  std::vector<float> transformed(ds.samples.size(), 0.0f);
  for (int idx : train) {
    double y_ms = ds.samples[static_cast<size_t>(idx)].latency_seconds * kSecondsToMs;
    transformed[static_cast<size_t>(idx)] = static_cast<float>(label_transform_->Transform(y_ms));
  }

  // Domain batches for the CMD regularizer.
  std::map<int, std::vector<int>> src_buckets;
  std::map<int, std::vector<int>> tgt_buckets;
  if (alpha > 0.0) {
    src_buckets = GroupByLeafCount(ds, source_domain);
    tgt_buckets = GroupByLeafCount(ds, target_domain);
  }

  double best_valid_mape = 1e30;
  std::vector<Matrix> best_params;
  size_t samples_seen = 0;
  auto start = std::chrono::steady_clock::now();

  for (int epoch = 0; epoch < epochs; ++epoch) {
    std::vector<Batch> batches = MakeBatches(buckets, config_.batch_size, &rng_);
    std::vector<Batch> src_batches;
    std::vector<Batch> tgt_batches;
    if (alpha > 0.0) {
      src_batches = MakeBatches(src_buckets, config_.batch_size, &rng_);
      tgt_batches = MakeBatches(tgt_buckets, config_.batch_size, &rng_);
    }
    double epoch_loss = 0.0;
    size_t step_in_epoch = 0;
    for (const Batch& batch : batches) {
      optimizer_->set_learning_rate(scheduler_->LrAt(global_step_));
      // Zero all grads.
      std::vector<Param*> params;
      CollectAllParams(&params);
      for (Param* p : params) {
        p->grad.Zero();
      }

      // ---- Prediction loss pass. ----
      BatchForward fwd = Forward(ds, batch);
      std::vector<float> preds(batch.sample_indices.size());
      std::vector<float> targets(batch.sample_indices.size());
      for (size_t i = 0; i < batch.sample_indices.size(); ++i) {
        preds[i] = fwd.preds.At(static_cast<int>(i), 0);
        targets[i] = transformed[static_cast<size_t>(batch.sample_indices[i])];
      }
      LossResult loss = ComputeLoss(config_.loss, preds, targets, config_.lambda_mape);
      Matrix dpred(static_cast<int>(preds.size()), 1);
      for (size_t i = 0; i < preds.size(); ++i) {
        dpred.At(static_cast<int>(i), 0) = loss.grad[i];
      }
      Backward(batch, dpred, Matrix());
      double step_loss = loss.value;

      // ---- CMD regularizer pass (one side per step, alternating). ----
      if (alpha > 0.0 && !src_batches.empty() && !tgt_batches.empty()) {
        bool update_source = (step_in_epoch % 2) == 0;
        const Batch& const_batch =
            update_source ? tgt_batches[step_in_epoch % tgt_batches.size()]
                          : src_batches[step_in_epoch % src_batches.size()];
        const Batch& grad_batch =
            update_source ? src_batches[step_in_epoch % src_batches.size()]
                          : tgt_batches[step_in_epoch % tgt_batches.size()];
        // Constant side first (its caches are overwritten by the grad side).
        Matrix z_const = Forward(ds, const_batch).z;
        BatchForward grad_fwd = Forward(ds, grad_batch);
        Matrix dz(grad_fwd.z.rows(), grad_fwd.z.cols());
        Matrix dz_const(z_const.rows(), z_const.cols());
        double cmd = CmdDistanceWithGrad(grad_fwd.z, z_const, config_.cmd_moments,
                                         /*span=*/-1.0, alpha, &dz, &dz_const);
        Backward(grad_batch, Matrix(), dz);
        step_loss += alpha * cmd;
      }

      ClipGradients();
      optimizer_->Step();
      ++global_step_;
      ++step_in_epoch;
      samples_seen += batch.sample_indices.size();
      epoch_loss += step_loss;
    }
    stats.epoch_train_loss.push_back(epoch_loss / std::max<size_t>(1, batches.size()));

    if (!valid.empty()) {
      EvalStats v = Evaluate(ds, valid);
      stats.epoch_valid_mape.push_back(v.mape);
      if (v.mape < best_valid_mape) {
        best_valid_mape = v.mape;
        best_params = SnapshotParams();
      }
    }
  }
  auto end = std::chrono::steady_clock::now();
  stats.train_seconds = std::chrono::duration<double>(end - start).count();
  stats.throughput_samples_per_sec =
      stats.train_seconds > 0.0 ? static_cast<double>(samples_seen) / stats.train_seconds : 0.0;

  if (!best_params.empty()) {
    RestoreParams(best_params);
  }
  if (!valid.empty()) {
    stats.final_valid = Evaluate(ds, valid);
  }
  return stats;
}

std::vector<double> CdmppPredictor::Predict(const Dataset& ds, const std::vector<int>& indices) {
  CDMPP_CHECK(fitted_);
  EnsureHeads(ds, indices);
  std::vector<double> out(indices.size(), 0.0);
  // Position of each sample index within `indices` (indices may repeat).
  std::map<int, std::vector<size_t>> positions;
  for (size_t i = 0; i < indices.size(); ++i) {
    positions[indices[i]].push_back(i);
  }
  auto buckets = GroupByLeafCount(ds, indices);
  std::vector<Batch> batches = MakeBatches(buckets, config_.batch_size, /*rng=*/nullptr);
  for (const Batch& batch : batches) {
    BatchForward fwd = Forward(ds, batch);
    for (size_t i = 0; i < batch.sample_indices.size(); ++i) {
      double pred_ms = label_transform_->Inverse(
          ClampTransformed(static_cast<double>(fwd.preds.At(static_cast<int>(i), 0))));
      for (size_t pos : positions[batch.sample_indices[i]]) {
        out[pos] = pred_ms / kSecondsToMs;
      }
    }
  }
  return out;
}

double CdmppPredictor::PredictAst(const CompactAst& ast, int device_id) {
  CDMPP_CHECK(fitted_);
  CDMPP_CHECK(ast.num_leaves > 0);
  EnsureHead(ast.num_leaves);
  AstBatchView view;
  view.asts = {&ast};
  view.device_ids = {device_id};
  return PredictBatched(view)[0];
}

std::vector<float> CdmppPredictor::HeadColumnScales(int leaf_count, const Linear& head) const {
  // A head's input is the packed encoder output [B, leaf_count * d_model]:
  // leaf_count tiled copies of the last layer's norm2 channel profile, which
  // is statically estimable from its gamma/beta — so the largest GEMM in the
  // model (k up to leaf_count * d_model) gets per-channel activation scales.
  const LayerNorm& last_norm = encoder_->layer(encoder_->num_layers() - 1).norm2();
  const std::vector<float> est = LayerNormActAbsMax(last_norm);
  std::vector<float> tiled(static_cast<size_t>(leaf_count) * est.size());
  for (int t = 0; t < leaf_count; ++t) {
    std::copy(est.begin(), est.end(), tiled.begin() + static_cast<size_t>(t) * est.size());
  }
  return BalancedColumnScales(tiled, head.weight());
}

void CdmppPredictor::PrepareQuantizedInference() {
  CDMPP_CHECK_MSG(fitted_, "quantize an unfitted predictor: run Pretrain first");
  q_leaf_heads_.clear();
  for (const auto& [leaves, head] : leaf_heads_) {
    q_leaf_heads_[leaves] =
        std::make_unique<QuantizedLinear>(*head, HeadColumnScales(leaves, *head));
  }
  q_device_mlp_ = std::make_unique<QuantizedMlp>(*device_mlp_);
  // The decoder's final [*, 1] projection stays fp32: its absolute noise
  // hits the transformed label directly (see QuantizedMlp in quantize.h).
  q_decoder_ = std::make_unique<QuantizedMlp>(*decoder_, /*num_fp32_tail_layers=*/1);
  // Encoder weight GEMMs (the bulk of serving FLOPs); used by Precision::kInt8,
  // skipped by kInt8Heads at forward time.
  q_encoder_ = std::make_unique<QuantizedTransformerEncoder>(*encoder_);
}

bool CdmppPredictor::HasQuantizedHead(int leaf_count) const {
  return q_leaf_heads_.find(leaf_count) != q_leaf_heads_.end();
}

void CdmppPredictor::EnsureQuantizedHead(int leaf_count) {
  EnsureHead(leaf_count);
  if (HasQuantizedHead(leaf_count)) {
    return;
  }
  const Linear& head = *leaf_heads_.at(leaf_count);
  q_leaf_heads_[leaf_count] =
      std::make_unique<QuantizedLinear>(head, HeadColumnScales(leaf_count, head));
}

bool CdmppPredictor::HasHead(int leaf_count) const {
  return leaf_heads_.find(leaf_count) != leaf_heads_.end();
}

void CdmppPredictor::EnsureHead(int leaf_count) {
  CDMPP_CHECK(leaf_count > 0);
  if (HasHead(leaf_count)) {
    return;
  }
  leaf_heads_[leaf_count] =
      std::make_unique<Linear>(leaf_count * config_.d_model, config_.z_dim, &rng_);
  RebuildOptimizer();
}

std::vector<double> CdmppPredictor::PredictBatched(const AstBatchView& view,
                                                   uint64_t* num_forward_passes) const {
  // Arena leased from the process-wide pool: repeated callers (PredictAst,
  // tests, the replayer) share warm arenas with the serving workers and the
  // batch-row-parallel layer chunks instead of each thread growing a private
  // one. Checkout never blocks, so this composes with the nested scratch
  // leases the forward takes internally.
  WorkspacePool::Lease ws = WorkspacePool::Global().Acquire();
  std::vector<double> out(view.size(), 0.0);
  PredictBatched(view, ws.get(), out.data(), num_forward_passes);
  return out;
}

void CdmppPredictor::PredictBatched(const AstBatchView& view, Workspace* ws, double* out,
                                    uint64_t* num_forward_passes) const {
  PredictBatchedImpl(view, ws, out, num_forward_passes, Precision::kFp32);
}

void CdmppPredictor::PredictBatchedQuantized(const AstBatchView& view, Workspace* ws,
                                             double* out, uint64_t* num_forward_passes,
                                             Precision mode) const {
  CDMPP_CHECK_MSG(quantized_ready(),
                  "int8 serving before PrepareQuantizedInference()");
  CDMPP_CHECK_MSG(mode != Precision::kFp32,
                  "PredictBatchedQuantized called with fp32 mode; use PredictBatched");
  PredictBatchedImpl(view, ws, out, num_forward_passes, mode);
}

std::vector<double> CdmppPredictor::PredictBatchedQuantized(
    const AstBatchView& view, uint64_t* num_forward_passes, Precision mode) const {
  WorkspacePool::Lease ws = WorkspacePool::Global().Acquire();
  std::vector<double> out(view.size(), 0.0);
  PredictBatchedQuantized(view, ws.get(), out.data(), num_forward_passes, mode);
  return out;
}

void CdmppPredictor::PredictBatchedImpl(const AstBatchView& view, Workspace* ws, double* out,
                                        uint64_t* num_forward_passes, Precision mode) const {
  const bool quantized = mode != Precision::kFp32;
  CDMPP_CHECK(fitted_);
  CDMPP_CHECK(view.asts.size() == view.device_ids.size());
  if (view.size() == 0) {
    // Nothing to predict; `out` may legitimately be null here (an empty
    // vector's data()).
    if (num_forward_passes != nullptr) {
      *num_forward_passes = 0;
    }
    return;
  }
  CDMPP_CHECK(ws != nullptr && out != nullptr);
  // The plan recycles its buffers per thread, so steady-state bucketing of a
  // request stream costs no allocations (unlike the map-of-vectors grouping
  // the training path uses).
  static thread_local BatchPlan plan;
  plan.Build(view, config_.batch_size);
  if (num_forward_passes != nullptr) {
    *num_forward_passes = static_cast<uint64_t>(plan.num_batches());
  }
  const StandardScaler* scaler = scaler_.fitted() ? &scaler_ : nullptr;
  for (int bi = 0; bi < plan.num_batches(); ++bi) {
    const Batch& batch = plan.batch(bi);
    const int b = static_cast<int>(batch.sample_indices.size());
    const int l = batch.seq_len;
    auto head_it = leaf_heads_.find(l);
    CDMPP_CHECK_MSG(head_it != leaf_heads_.end(),
                    "no head for this leaf count; call EnsureHead first");
    const QuantizedLinear* q_head = nullptr;
    if (quantized) {
      auto q_it = q_leaf_heads_.find(l);
      CDMPP_CHECK_MSG(q_it != q_leaf_heads_.end(),
                      "no quantized head for this leaf count; call EnsureQuantizedHead first");
      q_head = q_it->second.get();
    }

    // Per-stage trace spans (no-ops unless the serving layer sampled this
    // batch and bound a Trace to the calling thread). Pure timing on the
    // calling thread: the data plane below is untouched, so the bitwise
    // thread-count/batch-size invariance contracts hold with tracing on.
    ws->Reset();
    Matrix* x = ws->NewMatrix(b * l, kFeatDim);
    {
      obs::ScopedSpan span(obs::Stage::kFeaturize);
      BuildFeatureMatrixInto(view, batch, scaler, config_.use_pe, config_.pe_theta, x);
    }
    Matrix* h = nullptr;
    {
      obs::ScopedSpan span(obs::Stage::kEncoder);
      // The input projection stays fp32 in every mode (its quantization noise
      // would feed the whole stack for ~1% of model FLOPs); kInt8 swaps the
      // encoder stack for its quantized snapshot, kInt8Heads keeps it fp32.
      Matrix* proj = input_proj_->ForwardInference(*x, ws);
      h = mode == Precision::kInt8 ? q_encoder_->ForwardInference(*proj, l, ws)
                                   : encoder_->ForwardInference(*proj, l, ws);
    }
    Matrix* zx = nullptr;
    {
      obs::ScopedSpan span(obs::Stage::kHeads);
      Matrix* packed = ws->NewMatrix(b, l * config_.d_model);
      PackRowsInto(*h, b, l, packed);
      zx = quantized ? q_head->ForwardInference(*packed, ws)
                     : head_it->second->ForwardInference(*packed, ws);
    }

    Matrix* zv = nullptr;
    {
      obs::ScopedSpan span(obs::Stage::kDeviceMlp);
      Matrix* dev = ws->NewMatrix(b, kDeviceFeatDim);
      BuildDeviceFeatureMatrixInto(view, batch, dev);
      zv = quantized ? q_device_mlp_->ForwardInference(*dev, ws)
                     : device_mlp_->ForwardInference(*dev, ws);
    }

    Matrix* preds = nullptr;
    {
      obs::ScopedSpan span(obs::Stage::kDecoder);
      Matrix* z = ws->NewMatrix(b, config_.z_dim + config_.device_embed_dim);
      for (int i = 0; i < b; ++i) {
        float* row = z->Row(i);
        for (int j = 0; j < config_.z_dim; ++j) {
          row[j] = zx->At(i, j);
        }
        for (int j = 0; j < config_.device_embed_dim; ++j) {
          row[config_.z_dim + j] = zv->At(i, j);
        }
      }
      preds = quantized ? q_decoder_->ForwardInference(*z, ws)
                        : decoder_->ForwardInference(*z, ws);
    }
    {
      // "Dequant" in the serving sense: map the transformed model output back
      // to seconds. (The int8 GEMM dequant epilogues are fused in-kernel and
      // accounted to their host stage.)
      obs::ScopedSpan span(obs::Stage::kDequant);
      for (int i = 0; i < b; ++i) {
        double pred_ms = label_transform_->Inverse(
            ClampTransformed(static_cast<double>(preds->At(i, 0))));
        out[static_cast<size_t>(batch.sample_indices[static_cast<size_t>(i)])] =
            pred_ms / kSecondsToMs;
      }
    }
  }
}

double CdmppPredictor::PredictProgram(const Dataset& ds, int program_index, int device_id) {
  // Locate (or synthesize) a sample row for this (program, device) pair.
  for (size_t i = 0; i < ds.samples.size(); ++i) {
    if (ds.samples[i].program_index == program_index && ds.samples[i].device_id == device_id) {
      return Predict(ds, {static_cast<int>(i)})[0];
    }
  }
  CDMPP_CHECK_MSG(false, "no sample for (program, device); build the dataset with this device");
  __builtin_unreachable();
}

EvalStats CdmppPredictor::Evaluate(const Dataset& ds, const std::vector<int>& indices) {
  EvalStats stats;
  if (indices.empty()) {
    return stats;
  }
  std::vector<double> pred = Predict(ds, indices);
  std::vector<double> truth;
  truth.reserve(indices.size());
  for (int idx : indices) {
    truth.push_back(ds.samples[static_cast<size_t>(idx)].latency_seconds);
  }
  std::vector<double> pred_ms(pred.size());
  std::vector<double> truth_ms(truth.size());
  for (size_t i = 0; i < pred.size(); ++i) {
    pred_ms[i] = pred[i] * kSecondsToMs;
    truth_ms[i] = truth[i] * kSecondsToMs;
  }
  stats.mape = Mape(pred_ms, truth_ms);
  stats.rmse_ms = Rmse(pred_ms, truth_ms);
  stats.acc20 = AccuracyWithin(pred_ms, truth_ms, 0.2);
  stats.acc10 = AccuracyWithin(pred_ms, truth_ms, 0.1);
  stats.acc5 = AccuracyWithin(pred_ms, truth_ms, 0.05);
  stats.count = static_cast<int>(indices.size());
  return stats;
}

Matrix CdmppPredictor::EncodeLatent(const Dataset& ds, const std::vector<int>& indices) {
  CDMPP_CHECK(fitted_);
  EnsureHeads(ds, indices);
  Matrix out(static_cast<int>(indices.size()), config_.z_dim + config_.device_embed_dim);
  std::map<int, std::vector<size_t>> positions;
  for (size_t i = 0; i < indices.size(); ++i) {
    positions[indices[i]].push_back(i);
  }
  auto buckets = GroupByLeafCount(ds, indices);
  std::vector<Batch> batches = MakeBatches(buckets, config_.batch_size, /*rng=*/nullptr);
  for (const Batch& batch : batches) {
    BatchForward fwd = Forward(ds, batch);
    for (size_t i = 0; i < batch.sample_indices.size(); ++i) {
      for (size_t pos : positions[batch.sample_indices[i]]) {
        for (int j = 0; j < out.cols(); ++j) {
          out.At(static_cast<int>(pos), j) = fwd.z.At(static_cast<int>(i), j);
        }
      }
    }
  }
  return out;
}

}  // namespace cdmpp

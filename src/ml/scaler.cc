#include "src/ml/scaler.h"

#include <cmath>

#include "src/support/check.h"

namespace cdmpp {

void StandardScaler::Fit(const Matrix& x) {
  CDMPP_CHECK(x.rows() > 0);
  const int n = x.rows();
  const int d = x.cols();
  mean_.assign(static_cast<size_t>(d), 0.0f);
  inv_std_.assign(static_cast<size_t>(d), 1.0f);
  // Welford's streaming moments: the naive sum_sq/n - mu*mu form cancels
  // catastrophically for large-magnitude columns and can go negative.
  std::vector<double> mu(static_cast<size_t>(d), 0.0);
  std::vector<double> m2(static_cast<size_t>(d), 0.0);
  for (int i = 0; i < n; ++i) {
    const float* row = x.Row(i);
    const double count = static_cast<double>(i + 1);
    for (int j = 0; j < d; ++j) {
      double delta = row[j] - mu[static_cast<size_t>(j)];
      mu[static_cast<size_t>(j)] += delta / count;
      m2[static_cast<size_t>(j)] += delta * (row[j] - mu[static_cast<size_t>(j)]);
    }
  }
  for (int j = 0; j < d; ++j) {
    double var = m2[static_cast<size_t>(j)] / n;  // population variance, >= 0
    mean_[static_cast<size_t>(j)] = static_cast<float>(mu[static_cast<size_t>(j)]);
    inv_std_[static_cast<size_t>(j)] =
        var > 1e-10 ? static_cast<float>(1.0 / std::sqrt(var)) : 1.0f;
  }
}

void StandardScaler::Apply(Matrix* x) const {
  CDMPP_CHECK(fitted());
  CDMPP_CHECK(x->cols() == dim());
  for (int i = 0; i < x->rows(); ++i) {
    ApplyRow(x->Row(i));
  }
}

void StandardScaler::ApplyRow(float* row) const {
  for (size_t j = 0; j < mean_.size(); ++j) {
    row[j] = (row[j] - mean_[j]) * inv_std_[j];
  }
}

}  // namespace cdmpp

// Adversarial concurrency stress for the serving data plane. Built for the
// ThreadSanitizer CI tier but registered in EVERY leg: without TSan it is a
// plain race-prone stress test whose value assertions (bitwise-stable served
// predictions under maximal interference) catch corruption the sanitizer
// tier proves impossible.
//
// One test drives, concurrently:
//   * several client threads hammering PredictionService::Submit (duplicate
//     keys included, so coalescing and the cache-hit fast path both fire),
//   * a recalibration thread re-preparing the int8 snapshots through
//     PredictionService::Recalibrate() — the exclusive-model-lock API;
//     calling predictor->PrepareQuantizedInference() directly here would be
//     a data race on the snapshot pointers against the workers' lock-free
//     forwards, which is exactly why the API exists,
//   * a stats thread cycling ServerStats::Snapshot / ResetStats / ToString
//     plus MetricsRegistry and TraceCollector dumps,
//   * a WorkspacePool churn thread leasing/returning global-pool arenas
//     (nested leases included), and
//   * 1-in-2 trace sampling, so ScopedTraceBinding/ScopedSpan/Emit run hot,
// all under a deliberately small 3-thread global ThreadPool so intra-request
// ParallelFor forking, lease traffic, and worker-level batching fight over
// the same workers instead of spreading out.
//
// The pinned contract: every future resolves to the bitwise-exact value the
// active precision's direct forward computes, no matter how the interleaving
// falls — recalibration from unchanged parameters is bitwise invisible.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/predictor.h"
#include "src/nn/workspace.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/prediction_service.h"
#include "src/support/cpu_features.h"
#include "src/support/parallel_for.h"
#include "src/support/rng.h"
#include "src/tir/schedule.h"

namespace cdmpp {
namespace {

// Routes ThreadPool::Global() to a private pool for the enclosing scope.
struct ScopedGlobalPool {
  explicit ScopedGlobalPool(int threads) : pool(threads) {
    ThreadPool::SetGlobalForTesting(&pool);
  }
  ~ScopedGlobalPool() { ThreadPool::SetGlobalForTesting(nullptr); }
  ThreadPool pool;
};

// Forces 1-in-N trace sampling for the enclosing scope.
struct ScopedTraceSampling {
  explicit ScopedTraceSampling(int n) : prev(obs::TraceCollector::Global().sample_every()) {
    obs::TraceCollector::Global().SetSampleEvery(n);
  }
  ~ScopedTraceSampling() { obs::TraceCollector::Global().SetSampleEvery(prev); }
  int prev;
};

struct StressWorld {
  Dataset ds;
  std::unique_ptr<CdmppPredictor> predictor;
  std::vector<CompactAst> workload;
  std::vector<double> expected;  // per workload item, active-precision forward
};

// One tiny trained world shared by both tests (training dominates runtime).
StressWorld& World() {
  static StressWorld* world = [] {
    auto* w = new StressWorld();
    DatasetOptions opts;
    opts.device_ids = {0};
    opts.schedules_per_task = 2;
    opts.max_networks = 4;
    opts.seed = 23;
    w->ds = BuildDataset(opts);

    PredictorConfig cfg;
    cfg.d_model = 16;
    cfg.num_heads = 2;
    cfg.d_ff = 32;
    cfg.num_layers = 1;
    cfg.z_dim = 16;
    cfg.device_embed_dim = 8;
    cfg.device_hidden_dim = 16;
    cfg.decoder_hidden = {16};
    cfg.epochs = 1;
    cfg.seed = 7;
    w->predictor = std::make_unique<CdmppPredictor>(cfg);
    Rng rng(29);
    SplitIndices split = SplitDataset(w->ds, {0}, {}, &rng);
    w->predictor->Pretrain(w->ds, split.train, split.valid);

    Rng srng(31);
    for (const TaskInfo& info : w->ds.tasks) {
      for (int k = 0; k < 2; ++k) {
        w->workload.push_back(
            ExtractCompactAst(GenerateProgram(info.task, SampleSchedule(info.task, &srng))));
      }
    }
    // Expectations come from the data plane the service will actually use
    // (the active CDMPP_PRECISION, so this test is meaningful on every CI
    // matrix leg). Quantized snapshots are a deterministic function of the
    // fp32 parameters: the service constructor's own PrepareQuantizedInference
    // and every later Recalibrate() rebuild bitwise-identical ones.
    const Precision mode = DefaultPrecision();
    if (mode != Precision::kFp32) {
      w->predictor->PrepareQuantizedInference();
    }
    for (const CompactAst& ast : w->workload) {
      if (mode != Precision::kFp32) {
        w->predictor->EnsureQuantizedHead(ast.num_leaves);
      } else {
        w->predictor->EnsureHead(ast.num_leaves);
      }
    }
    for (const CompactAst& ast : w->workload) {
      AstBatchView one;
      one.asts.push_back(&ast);
      one.device_ids.push_back(0);
      w->expected.push_back(mode != Precision::kFp32
                                ? w->predictor->PredictBatchedQuantized(one, nullptr, mode)[0]
                                : w->predictor->PredictBatched(one)[0]);
    }
    return w;
  }();
  return *world;
}

// Serial regression pin for the concurrent contract below: recalibrating
// from unchanged parameters must be bitwise invisible to served values.
// (If this drifts, the stress test's equality assertions become meaningless
// noise instead of a corruption detector.)
TEST(TsanStressTest, RecalibrateFromUnchangedParamsIsBitwiseInvisible) {
  StressWorld& w = World();
  ServeOptions opts;
  opts.num_workers = 1;
  opts.enable_cache = false;  // every Predict runs a real forward
  PredictionService service(w.predictor.get(), opts);
  std::vector<double> before;
  before.reserve(w.workload.size());
  for (const CompactAst& ast : w.workload) {
    before.push_back(service.Predict(ast, 0));
  }
  service.Recalibrate();
  for (size_t i = 0; i < w.workload.size(); ++i) {
    EXPECT_EQ(service.Predict(w.workload[i], 0), before[i]) << "request " << i;
    EXPECT_EQ(before[i], w.expected[i]) << "request " << i;
  }
}

TEST(TsanStressTest, ConcurrentSubmitRecalibrateStatsTraceAndPoolChurn) {
  StressWorld& w = World();
  ScopedGlobalPool pool(3);      // small: forking + leases contend for real
  ScopedTraceSampling trace(2);  // every other request runs the trace plumbing

  ServeOptions opts;
  opts.num_workers = 3;
  opts.batch_window_ms = 0.05;
  opts.cache_capacity = 64;  // small enough that churn forces LRU evictions
  opts.cache_shards = 4;
  PredictionService service(w.predictor.get(), opts);

  constexpr int kSubmitters = 3;
  constexpr int kSubmitsPerThread = 400;
  std::atomic<bool> done{false};
  std::atomic<int> value_mismatches{0};

  std::vector<std::thread> clients;
  clients.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(100 + t);
      std::vector<std::pair<size_t, std::future<double>>> pending;
      pending.reserve(kSubmitsPerThread);
      for (int i = 0; i < kSubmitsPerThread; ++i) {
        // Skewed index: low indices repeat often (coalescing + cache hits),
        // the tail keeps evicting entries from the small cache.
        const size_t idx = static_cast<size_t>(rng.Uniform(0.0, 1.0) * rng.Uniform(0.0, 1.0) *
                                               static_cast<double>(w.workload.size())) %
                           w.workload.size();
        pending.emplace_back(idx, service.Submit(w.workload[idx], 0));
        if (pending.size() >= 64) {
          for (auto& [j, fut] : pending) {
            if (fut.get() != w.expected[j]) {
              value_mismatches.fetch_add(1);
            }
          }
          pending.clear();
        }
      }
      for (auto& [j, fut] : pending) {
        if (fut.get() != w.expected[j]) {
          value_mismatches.fetch_add(1);
        }
      }
    });
  }

  std::thread recalibrator([&] {
    while (!done.load(std::memory_order_relaxed)) {
      service.Recalibrate();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  std::thread stats_reader([&] {
    int iter = 0;
    while (!done.load(std::memory_order_relaxed)) {
      ServerStatsSnapshot snap = service.Stats();
      (void)snap.ToString();
      if (++iter % 8 == 0) {
        service.ResetStats();  // racing Record* calls land in the new window
      }
      (void)obs::TraceCollector::Global().GetStats();
      (void)obs::MetricsRegistry::Global().DumpJson();
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  std::thread pool_churn([&] {
    while (!done.load(std::memory_order_relaxed)) {
      WorkspacePool::Lease outer = WorkspacePool::Global().Acquire();
      outer->NewMatrix(8, 8);
      {
        WorkspacePool::Lease nested = WorkspacePool::Global().Acquire();
        nested->NewMatrix(4, 4);
        nested->NewI16(32);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  for (std::thread& c : clients) {
    c.join();
  }
  done.store(true, std::memory_order_relaxed);
  recalibrator.join();
  stats_reader.join();
  pool_churn.join();

  EXPECT_EQ(value_mismatches.load(), 0)
      << "a served prediction deviated bitwise from the direct forward";
  // Stats were concurrently Reset, so only structural sanity is asserted.
  EXPECT_LE(service.cache().size(), opts.cache_capacity);
  service.Shutdown();
  ServerStatsSnapshot final_snap = service.Stats();
  EXPECT_LE(final_snap.cache_hits, final_snap.requests);
}

// The stealing scheduler under maximal interference: several concurrent
// top-level ParallelFor callers (mixed grains, one of them repeatedly
// throwing, every one running a nested ParallelForWithScratch inside its
// chunks) against one small shared pool. The pinned contracts:
//   * every caller's output is bitwise-identical to a plain serial loop —
//     the chunk partition is fixed at publish time, so neither stealing nor
//     the interleaving may change any value,
//   * every scratch lease returns (num_free == num_arenas afterwards), even
//     on the throwing caller's unwinding path,
//   * serial_contended does not move: contended top-level regions now fork
//     and compose instead of collapsing to inline serial.
TEST(TsanStressTest, ConcurrentTopLevelParallelForCallersComposeBitwise) {
  ScopedGlobalPool pool(4);
  WorkspacePool scratch_pool;  // private: lease accounting is exact

  constexpr int kCallers = 4;
  constexpr int kIters = 60;
  constexpr int64_t kN = 2048;
  const int64_t grains[kCallers] = {16, 48, 129, 512};  // mixed, non-dividing

  // Per-element functions with no partition-sensitive state: f writes out[],
  // g writes out2[] from inside the nested region.
  auto f = [](int caller, int64_t i) {
    const float x = 0.5f + static_cast<float>((i * 37 + caller * 11) % 101);
    return x * x + 3.0f * x + static_cast<float>(caller);
  };
  auto g = [](int caller, int64_t i) {
    return static_cast<float>((i * 13 + caller) % 257) * 0.25f;
  };

  // Serial references, computed before any concurrency starts.
  std::vector<std::vector<float>> want(kCallers), want2(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    want[c].resize(kN);
    want2[c].resize(kN);
    for (int64_t i = 0; i < kN; ++i) {
      want[c][static_cast<size_t>(i)] = f(c, i);
      want2[c][static_cast<size_t>(i)] = g(c, i);
    }
  }

  const uint64_t contended_before =
      obs::MetricsRegistry::Global().CounterValues()["parallel_for.serial_contended"];

  std::atomic<int> mismatches{0};
  std::atomic<int> thrower_caught{0};
  std::vector<std::thread> callers;
  callers.reserve(kCallers + 1);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      std::vector<float> out(kN), out2(kN);
      for (int iter = 0; iter < kIters; ++iter) {
        std::fill(out.begin(), out.end(), 0.0f);
        std::fill(out2.begin(), out2.end(), 0.0f);
        pool.pool.ParallelFor(0, kN, grains[c], [&](int64_t b, int64_t e) {
          for (int64_t i = b; i < e; ++i) {
            out[static_cast<size_t>(i)] = f(c, i);
          }
          // Nested region with scratch: runs inline on this executor (maybe
          // a stealing worker), leasing one arena per call. Writes stay in
          // this chunk's [b, e) slice, so concurrent chunks never overlap.
          pool.pool.ParallelForWithScratch(
              scratch_pool, b, e, 7, [&](Workspace* ws, int64_t nb, int64_t ne) {
                Matrix* tmp = ws->NewMatrix(4, 4);
                tmp->data()[0] = static_cast<float>(nb);  // arena really bumps
                for (int64_t i = nb; i < ne; ++i) {
                  out2[static_cast<size_t>(i)] = g(c, i);
                }
              });
        });
        if (out != want[c] || out2 != want2[c]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  // The thrower: top-level regions that fail mid-drain while everyone else
  // is stealing; the exception must come back to THIS caller every time and
  // scratch leased by its nested regions must return on unwind.
  callers.emplace_back([&] {
    for (int iter = 0; iter < kIters; ++iter) {
      try {
        pool.pool.ParallelFor(0, kN, 64, [&](int64_t b, int64_t e) {
          pool.pool.ParallelForWithScratch(scratch_pool, b, e, 33,
                                           [&](Workspace* ws, int64_t nb, int64_t) {
                                             ws->NewI16(16);
                                             if (nb >= kN / 2) {
                                               throw std::runtime_error("stress boom");
                                             }
                                           });
        });
      } catch (const std::runtime_error&) {
        thrower_caught.fetch_add(1);
      }
    }
  });
  for (std::thread& t : callers) {
    t.join();
  }

  EXPECT_EQ(mismatches.load(), 0)
      << "a concurrent ParallelFor caller deviated bitwise from the serial loop";
  EXPECT_EQ(thrower_caught.load(), kIters);
  EXPECT_EQ(scratch_pool.num_free(), scratch_pool.num_arenas())
      << "a scratch lease leaked across the concurrent/unwinding paths";
  const uint64_t contended_after =
      obs::MetricsRegistry::Global().CounterValues()["parallel_for.serial_contended"];
  EXPECT_EQ(contended_after, contended_before)
      << "a contended top-level region fell back to serial";
}

}  // namespace
}  // namespace cdmpp

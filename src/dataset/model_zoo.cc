#include "src/dataset/model_zoo.h"

#include <cstdio>

#include "src/support/check.h"

namespace cdmpp {

namespace {

// Incrementally builds one network's op list with linear or explicit deps.
class NetBuilder {
 public:
  explicit NetBuilder(std::string family) { def_.family = std::move(family); }

  // Appends an op depending on the previous op (or nothing if first).
  int Add(OpKind kind, std::vector<int64_t> dims, bool fused_relu = false) {
    std::vector<int> deps;
    if (!def_.ops.empty()) {
      deps.push_back(static_cast<int>(def_.ops.size()) - 1);
    }
    return AddWithDeps(kind, std::move(dims), fused_relu, std::move(deps));
  }

  // Appends an op with explicit dependencies.
  int AddWithDeps(OpKind kind, std::vector<int64_t> dims, bool fused_relu,
                  std::vector<int> deps) {
    NetworkOp op;
    op.task.kind = kind;
    op.task.dims = std::move(dims);
    op.task.fused_relu = fused_relu;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s_%s_%zu", def_.family.c_str(), OpKindName(kind),
                  def_.ops.size());
    op.task.name = buf;
    ValidateTask(op.task);
    for (int d : deps) {
      CDMPP_CHECK(d >= 0 && d < static_cast<int>(def_.ops.size()));
    }
    op.deps = std::move(deps);
    def_.ops.push_back(std::move(op));
    return static_cast<int>(def_.ops.size()) - 1;
  }

  int last() const { return static_cast<int>(def_.ops.size()) - 1; }

  NetworkDef Finish(std::string name, int batch) {
    def_.name = std::move(name);
    def_.batch_size = batch;
    CDMPP_CHECK(!def_.ops.empty());
    return std::move(def_);
  }

 private:
  NetworkDef def_;
};

// ---------------- CNN families ----------------

// A residual stage: conv3x3 -> conv3x3 -> elementwise add (+ optional 1x1s
// for the bottleneck variant).
NetworkDef BuildResNet(int depth, int bs, int res) {
  NetBuilder b("resnet");
  int64_t n = bs;
  int64_t hw = res / 4;  // after the stem
  b.Add(OpKind::kConv2d, {n, 3, res / 2, res / 2, 64, 7, 7}, true);  // stem
  b.Add(OpKind::kPool, {n, 64, hw, hw, 3, 3});
  const bool bottleneck = depth >= 50;
  const int64_t widths[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    int64_t c = widths[stage];
    int64_t h = std::max<int64_t>(hw >> stage, 4);
    int entry = b.last();
    if (bottleneck) {
      b.Add(OpKind::kConv2d, {n, c, h, h, c, 1, 1}, true);
      b.Add(OpKind::kConv2d, {n, c, h, h, c, 3, 3}, true);
      b.Add(OpKind::kConv2d, {n, c, h, h, 4 * c, 1, 1}, false);
      b.AddWithDeps(OpKind::kElementwise, {n * 4 * c * h * h}, true, {entry, b.last()});
    } else {
      b.Add(OpKind::kConv2d, {n, c, h, h, c, 3, 3}, true);
      b.Add(OpKind::kConv2d, {n, c, h, h, c, 3, 3}, false);
      b.AddWithDeps(OpKind::kElementwise, {n * c * h * h}, true, {entry, b.last()});
    }
  }
  b.Add(OpKind::kPool, {n, bottleneck ? 2048 : 512, 7, 7, 7, 7});
  b.Add(OpKind::kDense, {n, 1000, bottleneck ? 2048 : 512});
  b.Add(OpKind::kSoftmax, {n, 1000});
  char name[64];
  std::snprintf(name, sizeof(name), "resnet%d_bs%d_r%d", depth, bs, res);
  return b.Finish(name, bs);
}

NetworkDef BuildVgg(int depth, int bs, int res) {
  NetBuilder b("vgg");
  int64_t n = bs;
  const int convs_per_stage = depth >= 16 ? 2 : 1;
  const int64_t widths[5] = {64, 128, 256, 512, 512};
  int64_t h = res;
  int64_t cin = 3;
  for (int stage = 0; stage < 5; ++stage) {
    for (int k = 0; k < convs_per_stage; ++k) {
      b.Add(OpKind::kConv2d, {n, cin, h, h, widths[stage], 3, 3}, true);
      cin = widths[stage];
    }
    b.Add(OpKind::kPool, {n, cin, h, h, 2, 2});
    h = std::max<int64_t>(h / 2, 4);
  }
  b.Add(OpKind::kDense, {n, 4096, cin * h * h}, true);
  b.Add(OpKind::kDense, {n, 4096, 4096}, true);
  b.Add(OpKind::kDense, {n, 1000, 4096});
  b.Add(OpKind::kSoftmax, {n, 1000});
  char name[64];
  std::snprintf(name, sizeof(name), "vgg%d_bs%d_r%d", depth, bs, res);
  return b.Finish(name, bs);
}

// Inverted residual block: 1x1 expand -> depthwise 3x3 -> 1x1 project.
NetworkDef BuildMobileNetV2(int width_percent, int bs, int res) {
  NetBuilder b("mobilenet_v2");
  int64_t n = bs;
  auto w = [&](int64_t c) { return std::max<int64_t>(8, c * width_percent / 100); };
  b.Add(OpKind::kConv2d, {n, 3, res / 2, res / 2, w(32), 3, 3}, true);
  const int64_t stages[5] = {16, 24, 32, 96, 160};
  int64_t cin = w(32);
  int64_t h = res / 2;
  for (int s = 0; s < 5; ++s) {
    int64_t cout = w(stages[s]);
    int64_t expand = cin * 6;
    h = std::max<int64_t>(h / 2, 4);
    int entry = b.last();
    b.Add(OpKind::kConv2d, {n, cin, h, h, expand, 1, 1}, true);
    b.Add(OpKind::kDepthwiseConv2d, {n, expand, h, h, 3, 3}, true);
    b.Add(OpKind::kConv2d, {n, expand, h, h, cout, 1, 1}, false);
    if (cout == cin) {
      b.AddWithDeps(OpKind::kElementwise, {n * cout * h * h}, false, {entry, b.last()});
    }
    cin = cout;
  }
  b.Add(OpKind::kConv2d, {n, cin, h, h, w(1280), 1, 1}, true);
  b.Add(OpKind::kPool, {n, w(1280), h, h, h, h});
  b.Add(OpKind::kDense, {n, 1000, w(1280)});
  b.Add(OpKind::kSoftmax, {n, 1000});
  char name[64];
  std::snprintf(name, sizeof(name), "mobilenet_v2_w%d_bs%d_r%d", width_percent, bs, res);
  return b.Finish(name, bs);
}

NetworkDef BuildInceptionV3(int bs, int res) {
  NetBuilder b("inception_v3");
  int64_t n = bs;
  int64_t h = res / 8;
  b.Add(OpKind::kConv2d, {n, 3, res / 2, res / 2, 32, 3, 3}, true);
  b.Add(OpKind::kConv2d, {n, 32, res / 4, res / 4, 64, 3, 3}, true);
  b.Add(OpKind::kPool, {n, 64, res / 4, res / 4, 3, 3});
  // One inception block with four parallel branches.
  int stem = b.last();
  int b1 = b.AddWithDeps(OpKind::kConv2d, {n, 64, h, h, 64, 1, 1}, true, {stem});
  b.AddWithDeps(OpKind::kConv2d, {n, 64, h, h, 48, 1, 1}, true, {stem});
  int b2 = b.AddWithDeps(OpKind::kConv2d, {n, 48, h, h, 64, 5, 5}, true, {b.last()});
  b.AddWithDeps(OpKind::kConv2d, {n, 64, h, h, 64, 1, 1}, true, {stem});
  b.AddWithDeps(OpKind::kConv2d, {n, 64, h, h, 96, 3, 3}, true, {b.last()});
  int b3 = b.AddWithDeps(OpKind::kConv2d, {n, 96, h, h, 96, 3, 3}, true, {b.last()});
  b.AddWithDeps(OpKind::kPool, {n, 64, h, h, 3, 3}, false, {stem});
  int b4 = b.AddWithDeps(OpKind::kConv2d, {n, 64, h, h, 32, 1, 1}, true, {b.last()});
  b.AddWithDeps(OpKind::kElementwise, {n * 256 * h * h}, false, {b1, b2, b3, b4});  // concat
  b.Add(OpKind::kConv2d, {n, 256, h, h, 288, 3, 3}, true);
  b.Add(OpKind::kPool, {n, 288, 8, 8, 8, 8});
  b.Add(OpKind::kDense, {n, 1000, 288});
  b.Add(OpKind::kSoftmax, {n, 1000});
  char name[64];
  std::snprintf(name, sizeof(name), "inception_v3_bs%d_r%d", bs, res);
  return b.Finish(name, bs);
}

NetworkDef BuildSqueezeNet(int bs, int res) {
  NetBuilder b("squeezenet");
  int64_t n = bs;
  b.Add(OpKind::kConv2d, {n, 3, res / 2, res / 2, 96, 7, 7}, true);
  b.Add(OpKind::kPool, {n, 96, res / 4, res / 4, 3, 3});
  int64_t h = res / 4;
  int64_t cin = 96;
  const int64_t squeeze_widths[3] = {16, 32, 48};
  for (int s = 0; s < 3; ++s) {
    int64_t sq = squeeze_widths[s];
    b.Add(OpKind::kConv2d, {n, cin, h, h, sq, 1, 1}, true);  // squeeze
    int squeeze_idx = b.last();
    int e1 = b.AddWithDeps(OpKind::kConv2d, {n, sq, h, h, sq * 4, 1, 1}, true, {squeeze_idx});
    int e3 = b.AddWithDeps(OpKind::kConv2d, {n, sq, h, h, sq * 4, 3, 3}, true, {squeeze_idx});
    b.AddWithDeps(OpKind::kElementwise, {n * sq * 8 * h * h}, false, {e1, e3});  // concat
    cin = sq * 8;
    h = std::max<int64_t>(h / 2, 4);
  }
  b.Add(OpKind::kConv2d, {n, cin, h, h, 1000, 1, 1}, false);
  b.Add(OpKind::kPool, {n, 1000, h, h, h, h});
  b.Add(OpKind::kSoftmax, {n, 1000});
  char name[64];
  std::snprintf(name, sizeof(name), "squeezenet_bs%d_r%d", bs, res);
  return b.Finish(name, bs);
}

NetworkDef BuildUnet(int bs, int res) {
  NetBuilder b("unet");
  int64_t n = bs;
  int64_t h = res / 2;
  const int64_t widths[3] = {64, 128, 256};
  std::vector<int> skips;
  int64_t cin = 3;
  for (int s = 0; s < 3; ++s) {
    b.Add(OpKind::kConv2d, {n, cin, h, h, widths[s], 3, 3}, true);
    skips.push_back(b.last());
    b.Add(OpKind::kPool, {n, widths[s], h, h, 2, 2});
    cin = widths[s];
    h = std::max<int64_t>(h / 2, 4);
  }
  b.Add(OpKind::kConv2d, {n, 256, h, h, 512, 3, 3}, true);  // bottleneck
  for (int s = 2; s >= 0; --s) {
    h = h * 2;
    int64_t c = widths[s];
    b.Add(OpKind::kConv2d, {n, s == 2 ? 512 : widths[s + 1], h, h, c, 3, 3}, true);  // upconv
    b.AddWithDeps(OpKind::kElementwise, {n * c * h * h}, true,
                  {skips[static_cast<size_t>(s)], b.last()});
  }
  b.Add(OpKind::kConv2d, {n, 64, h, h, 2, 1, 1}, false);
  char name[64];
  std::snprintf(name, sizeof(name), "unet_bs%d_r%d", bs, res);
  return b.Finish(name, bs);
}

// ---------------- Transformer families ----------------

// One self-attention + FFN block; `layers` blocks are instantiated so the
// replayer sees the full DFG while deduped tasks keep the dataset compact.
void AddTransformerBlocks(NetBuilder* b, int layers, int64_t tokens, int64_t hidden,
                          int64_t heads, int64_t ffn) {
  for (int l = 0; l < layers; ++l) {
    int block_in = b->last();
    b->AddWithDeps(OpKind::kDense, {tokens, 3 * hidden, hidden}, false, {block_in});  // QKV
    b->Add(OpKind::kBatchMatmul, {heads, tokens, tokens, hidden / heads});            // QK^T
    b->Add(OpKind::kSoftmax, {heads * tokens, tokens});
    b->Add(OpKind::kBatchMatmul, {heads, tokens, hidden / heads, tokens});  // AV
    b->Add(OpKind::kDense, {tokens, hidden, hidden});                       // proj
    b->AddWithDeps(OpKind::kElementwise, {tokens * hidden}, false, {block_in, b->last()});
    b->Add(OpKind::kLayerNorm, {tokens, hidden});
    int ffn_in = b->last();
    b->Add(OpKind::kDense, {tokens, ffn, hidden}, true);
    b->Add(OpKind::kDense, {tokens, hidden, ffn});
    b->AddWithDeps(OpKind::kElementwise, {tokens * hidden}, false, {ffn_in, b->last()});
    b->Add(OpKind::kLayerNorm, {tokens, hidden});
  }
}

NetworkDef BuildBert(const char* size, int bs, int seq) {
  NetBuilder b("bert");
  int layers;
  int64_t hidden, heads;
  if (std::string(size) == "tiny") {
    layers = 2;
    hidden = 128;
    heads = 2;
  } else if (std::string(size) == "small") {
    layers = 4;
    hidden = 512;
    heads = 8;
  } else {  // base
    layers = 12;
    hidden = 768;
    heads = 12;
  }
  int64_t tokens = static_cast<int64_t>(bs) * seq;
  b.Add(OpKind::kDense, {tokens, hidden, hidden});  // embedding projection
  b.Add(OpKind::kLayerNorm, {tokens, hidden});
  AddTransformerBlocks(&b, layers, tokens, hidden, heads * bs, hidden * 4);
  b.Add(OpKind::kDense, {static_cast<int64_t>(bs), 2, hidden});  // classifier head
  b.Add(OpKind::kSoftmax, {static_cast<int64_t>(bs), 2});
  char name[64];
  std::snprintf(name, sizeof(name), "bert_%s_bs%d_s%d", size, bs, seq);
  return b.Finish(name, bs);
}

NetworkDef BuildGpt2(const char* size, int bs, int seq) {
  NetBuilder b("gpt2");
  int layers = std::string(size) == "m" ? 8 : 4;
  int64_t hidden = std::string(size) == "m" ? 1024 : 768;
  int64_t heads = hidden / 64;
  int64_t tokens = static_cast<int64_t>(bs) * seq;
  b.Add(OpKind::kDense, {tokens, hidden, hidden});
  AddTransformerBlocks(&b, layers, tokens, hidden, heads * bs, hidden * 4);
  b.Add(OpKind::kDense, {tokens, 8192, hidden});  // LM head (vocab slice)
  b.Add(OpKind::kSoftmax, {tokens, 8192});
  char name[64];
  std::snprintf(name, sizeof(name), "gpt2_%s_bs%d_s%d", size, bs, seq);
  return b.Finish(name, bs);
}

NetworkDef BuildViT(const char* size, int bs, int res) {
  NetBuilder b("vit");
  int layers = std::string(size) == "b" ? 8 : 4;
  int64_t hidden = std::string(size) == "b" ? 768 : 384;
  int64_t patches = static_cast<int64_t>(res / 16) * (res / 16);
  int64_t tokens = static_cast<int64_t>(bs) * patches;
  b.Add(OpKind::kConv2d, {bs, 3, res / 16, res / 16, hidden, 1, 1});  // patch embed
  AddTransformerBlocks(&b, layers, tokens, hidden, (hidden / 64) * bs, hidden * 4);
  b.Add(OpKind::kDense, {static_cast<int64_t>(bs), 1000, hidden});
  b.Add(OpKind::kSoftmax, {static_cast<int64_t>(bs), 1000});
  char name[64];
  std::snprintf(name, sizeof(name), "vit_%s_bs%d_r%d", size, bs, res);
  return b.Finish(name, bs);
}

NetworkDef BuildLstmLm(int num_layers, int bs, int seq) {
  NetBuilder b("lstm_lm");
  int64_t hidden = 512;
  int64_t n = static_cast<int64_t>(bs) * seq;
  b.Add(OpKind::kDense, {n, hidden, hidden});  // embedding
  for (int l = 0; l < num_layers; ++l) {
    b.Add(OpKind::kDense, {n, 4 * hidden, hidden});       // input gates
    b.Add(OpKind::kDense, {n, 4 * hidden, hidden});       // recurrent gates
    b.Add(OpKind::kElementwise, {n * 4 * hidden}, false);  // gate nonlinearity
    b.Add(OpKind::kElementwise, {n * hidden}, false);      // cell update
  }
  b.Add(OpKind::kDense, {n, 8192, hidden});
  b.Add(OpKind::kSoftmax, {n, 8192});
  char name[64];
  std::snprintf(name, sizeof(name), "lstm_lm_l%d_bs%d_s%d", num_layers, bs, seq);
  return b.Finish(name, bs);
}

NetworkDef BuildMlpMixer(int bs, int res) {
  NetBuilder b("mlp_mixer");
  int64_t hidden = 512;
  int64_t patches = static_cast<int64_t>(res / 16) * (res / 16);
  int64_t tokens = static_cast<int64_t>(bs) * patches;
  b.Add(OpKind::kConv2d, {bs, 3, res / 16, res / 16, hidden, 1, 1});
  for (int l = 0; l < 4; ++l) {
    b.Add(OpKind::kLayerNorm, {tokens, hidden});
    b.Add(OpKind::kTranspose, {tokens, hidden});
    b.Add(OpKind::kDense, {static_cast<int64_t>(bs) * hidden, patches, patches}, true);
    b.Add(OpKind::kTranspose, {tokens, hidden});
    b.Add(OpKind::kLayerNorm, {tokens, hidden});
    b.Add(OpKind::kDense, {tokens, hidden * 4, hidden}, true);
    b.Add(OpKind::kDense, {tokens, hidden, hidden * 4});
  }
  b.Add(OpKind::kReduce, {static_cast<int64_t>(bs), patches * hidden / bs});
  b.Add(OpKind::kDense, {static_cast<int64_t>(bs), 1000, hidden});
  b.Add(OpKind::kSoftmax, {static_cast<int64_t>(bs), 1000});
  char name[64];
  std::snprintf(name, sizeof(name), "mlp_mixer_bs%d_r%d", bs, res);
  return b.Finish(name, bs);
}

}  // namespace

std::vector<NetworkDef> BuildModelZoo() {
  std::vector<NetworkDef> zoo;
  const int batches[3] = {1, 4, 8};
  const int resolutions[2] = {224, 288};
  const int seqs[2] = {128, 256};

  for (int res : resolutions) {
    for (int bs : batches) {
      for (int depth : {18, 34, 50}) {
        zoo.push_back(BuildResNet(depth, bs, res));
      }
      for (int depth : {11, 16}) {
        zoo.push_back(BuildVgg(depth, bs, res));
      }
      for (int width : {50, 100}) {
        zoo.push_back(BuildMobileNetV2(width, bs, res));
      }
      zoo.push_back(BuildInceptionV3(bs, res));
      zoo.push_back(BuildSqueezeNet(bs, res));
      zoo.push_back(BuildUnet(bs, res));
      zoo.push_back(BuildMlpMixer(bs, res));
    }
  }
  for (int seq : seqs) {
    for (int bs : batches) {
      for (const char* size : {"tiny", "small", "base"}) {
        zoo.push_back(BuildBert(size, bs, seq));
      }
      for (const char* size : {"s", "m"}) {
        zoo.push_back(BuildGpt2(size, bs, seq));
      }
      for (int layers : {1, 2}) {
        zoo.push_back(BuildLstmLm(layers, bs, seq));
      }
    }
  }
  for (int res : resolutions) {
    for (int bs : batches) {
      for (const char* size : {"s", "b"}) {
        zoo.push_back(BuildViT(size, bs, res));
      }
    }
  }

  for (size_t i = 0; i < zoo.size(); ++i) {
    zoo[i].id = static_cast<int>(i);
  }
  return zoo;
}

NetworkDef BuildNetworkByName(const std::string& name) {
  for (NetworkDef& net : BuildModelZoo()) {
    if (net.name == name) {
      return std::move(net);
    }
  }
  CDMPP_CHECK_MSG(false, name.c_str());
  __builtin_unreachable();
}

std::vector<std::string> HoldoutNetworkNames() {
  return {"resnet50_bs1_r224", "mobilenet_v2_w100_bs1_r224", "bert_tiny_bs1_s128"};
}

}  // namespace cdmpp

// KMeans++ clustering, the core of the paper's fine-tuning sampling strategy
// (Algorithm 1).
#ifndef SRC_ML_KMEANS_H_
#define SRC_ML_KMEANS_H_

#include <vector>

#include "src/nn/matrix.h"
#include "src/support/rng.h"

namespace cdmpp {

struct KMeansResult {
  Matrix centroids;                 // [k, dim]
  std::vector<int> assignment;      // per-point cluster id
  std::vector<int> cluster_sizes;   // per-cluster point count
  double inertia = 0.0;             // sum of squared distances to centroids
};

// Runs KMeans with KMeans++ initialization on row-vectors of `points`.
// Deterministic given the rng seed. k must be in [1, points.rows()].
KMeansResult KMeans(const Matrix& points, int k, Rng* rng, int max_iters = 50);

// Squared Euclidean distance between a point row and a centroid row.
double SquaredDistance(const float* a, const float* b, int dim);

}  // namespace cdmpp

#endif  // SRC_ML_KMEANS_H_

// Multi-head self-attention over batches of equal-length sequences.
//
// Inputs are packed row-major as [batch * seq_len, d_model]. Because CDMPP
// batches compact ASTs by leaf count (paper §5.1), every batch has a uniform
// sequence length and no padding/masking is needed — this is exactly the
// efficiency claim of the compact-AST design.
#ifndef SRC_NN_ATTENTION_H_
#define SRC_NN_ATTENTION_H_

#include <memory>
#include <vector>

#include "src/nn/layers.h"
#include "src/nn/quantize.h"

namespace cdmpp {

class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(int d_model, int num_heads, Rng* rng);

  // x: [batch * seq_len, d_model]. Returns the same shape.
  Matrix Forward(const Matrix& x, int seq_len);
  // Cache-free const forward (see src/nn/layers.h); attention weights are
  // computed into locals and discarded.
  Matrix ForwardInference(const Matrix& x, int seq_len) const;
  // Hot path: per-head Q/K/V blocks are addressed in place inside the packed
  // [batch*seq_len, d_model] activations via the kernels' leading-dimension
  // parameters — zero block extraction copies. The per-(sample, head) blocks
  // split across cores (each writes a disjoint context block; chunks lease
  // scores scratch from WorkspacePool::Global()), and the output is bitwise
  // identical for every CDMPP_NUM_THREADS value. Layer-owned scratch comes
  // from `ws`, which stays single-owner.
  Matrix* ForwardInference(const Matrix& x, int seq_len, Workspace* ws) const;
  Matrix Backward(const Matrix& dy);
  void CollectParams(std::vector<Param*>* out) override;

  int d_model() const { return d_model_; }
  int num_heads() const { return num_heads_; }

  // Read-only projection views: the int8 calibration path
  // (QuantizedMultiHeadSelfAttention) snapshots these into packed quantized
  // form.
  const Linear& wq() const { return *wq_; }
  const Linear& wk() const { return *wk_; }
  const Linear& wv() const { return *wv_; }
  const Linear& wo() const { return *wo_; }

 private:
  int d_model_;
  int num_heads_;
  int d_head_;
  std::unique_ptr<Linear> wq_, wk_, wv_, wo_;

  // Forward caches.
  int cached_seq_len_ = 0;
  int cached_batch_ = 0;
  Matrix cached_q_, cached_k_, cached_v_;
  std::vector<Matrix> cached_attn_;  // per (sample, head): [L, L] softmax weights
};

// The int8 mirror of MultiHeadSelfAttention for the serving hot path
// (CDMPP_PRECISION=int8): the four weight GEMMs — Q/K/V projections and the
// output projection — run through the quantized kernel tier, while the
// activation×activation score/context GEMMs stay fp32 (their operands are
// both dynamic, a different quantization problem — ROADMAP follow-on). The
// score/context block loop is the SAME code the fp32 path runs (shared
// helper), so the quantized path inherits its thread-count bitwise
// invariance; QKV quantization happens before the forked region with
// row-deterministic per-row scales, keeping batch-size invariance too.
//
// `act_absmax` is a data-free per-input-channel magnitude estimate for x
// (from the preceding LayerNorm when there is one); non-empty enables the
// per-channel activation-scale variant on the Q/K/V projections with ONE
// scale vector balanced against all three weights (multi-consumer
// BalancedColumnScales), so the forward quantizes x once and feeds the same
// codes to all three GEMMs (ForwardPreQuantized). Empty (the
// encoder's first layer, whose input comes from the fp32 input projection
// with no static channel profile) keeps Q/K/V fp32 entirely: measured on the
// serving fixtures, plain per-row quantization there breached the 1%
// end-to-end agreement contract — pre-softmax noise compounds through every
// downstream stage. The output projection is always quantized with plain
// per-row activation scales: its input is the attention context, whose
// channel profile is data-dependent, and its noise enters post-softmax.
//
// Calibrated, immutable snapshot: construction is mutating-world only,
// ForwardInference is const and thread-safe for concurrent readers.
class QuantizedMultiHeadSelfAttention {
 public:
  QuantizedMultiHeadSelfAttention(const MultiHeadSelfAttention& attn,
                                  const std::vector<float>& act_absmax);

  // x: [batch * seq_len, d_model]; same contract and parallel structure as
  // the fp32 arena ForwardInference.
  Matrix* ForwardInference(const Matrix& x, int seq_len, Workspace* ws) const;

  int d_model() const { return d_model_; }

 private:
  int d_model_;
  int num_heads_;
  int d_head_;
  std::vector<QuantizedLinear> qkv_;  // {q, k, v} when a channel profile exists
  std::vector<Linear> fp32_qkv_;      // {q, k, v} fp32 copies otherwise
  QuantizedLinear wo_;
};

}  // namespace cdmpp

#endif  // SRC_NN_ATTENTION_H_

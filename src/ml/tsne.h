// Minimal exact t-SNE (O(n^2)) for visualizing latent representations
// (paper Figs. 8, 11, 16). Sized for a few hundred points.
#ifndef SRC_ML_TSNE_H_
#define SRC_ML_TSNE_H_

#include "src/nn/matrix.h"
#include "src/support/rng.h"

namespace cdmpp {

struct TsneOptions {
  double perplexity = 20.0;
  int iterations = 300;
  double learning_rate = 100.0;
  double early_exaggeration = 4.0;  // applied for the first quarter of iters
};

// Embeds the rows of `points` into 2-D. Deterministic given the rng seed.
Matrix TsneEmbed(const Matrix& points, const TsneOptions& opts, Rng* rng);

}  // namespace cdmpp

#endif  // SRC_ML_TSNE_H_

// Operator-level task definitions.
//
// A Task mirrors a TVM/Ansor "tuning task": one computational subgraph (a
// fused operator) with concrete shapes. A task can be lowered to many
// different tensor programs by applying different schedules (src/tir/schedule.h).
#ifndef SRC_TIR_OP_H_
#define SRC_TIR_OP_H_

#include <cstdint>
#include <string>
#include <vector>

namespace cdmpp {

// The operator families the mini-IR supports. These cover the op mix of the
// model zoo (CNNs, transformers, MLPs): convolutions, GEMMs, reductions,
// normalizations and pointwise ops.
enum class OpKind {
  kConv2d,
  kDepthwiseConv2d,
  kDense,
  kBatchMatmul,
  kPool,
  kSoftmax,
  kLayerNorm,
  kElementwise,
  kReduce,
  kTranspose,
};

// Human-readable name, e.g. "conv2d".
const char* OpKindName(OpKind kind);
// Number of distinct OpKind values (for iteration / one-hot features).
constexpr int kNumOpKinds = 10;

// Shape-dimension layout per kind (all dims positive):
//   kConv2d:          {N, CI, H, W, CO, KH, KW}   stride assumed 1, SAME padding
//   kDepthwiseConv2d: {N, C, H, W, KH, KW}
//   kDense:           {M, N, K}                    out[M,N] = in[M,K] x w[K,N]
//   kBatchMatmul:     {B, M, N, K}
//   kPool:            {N, C, H, W, KH, KW}
//   kSoftmax:         {M, N}                       softmax along N
//   kLayerNorm:       {M, N}                       normalize along N
//   kElementwise:     {LEN}                        unary/binary pointwise
//   kReduce:          {M, N}                       sum along N
//   kTranspose:       {M, N}
struct Task {
  int id = -1;
  OpKind kind = OpKind::kElementwise;
  std::vector<int64_t> dims;
  // Whether a ReLU (or GELU-like) epilogue is fused into the program.
  bool fused_relu = false;
  std::string name;

  // Total floating point operations of one execution of the task.
  double Flops() const;
  // Minimum bytes moved to/from memory assuming perfect reuse (compulsory
  // traffic): inputs read once + outputs written once, fp32.
  double MemoryBytes() const;
  // Output element count (used by the replayer and epilogue sizing).
  int64_t OutputElems() const;
};

// Validates the dims vector length for the kind; aborts on mismatch.
void ValidateTask(const Task& task);

}  // namespace cdmpp

#endif  // SRC_TIR_OP_H_

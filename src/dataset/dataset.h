// Dataset construction: model zoo -> deduplicated tasks -> sampled schedules
// -> tensor programs -> compact ASTs -> simulated per-device latencies.
// This is the synthetic stand-in for Tenset plus the authors' own profiling
// (paper §7.1, Table 2).
#ifndef SRC_DATASET_DATASET_H_
#define SRC_DATASET_DATASET_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/ast/compact_ast.h"
#include "src/dataset/model_zoo.h"
#include "src/device/device.h"
#include "src/support/rng.h"
#include "src/tir/schedule.h"

namespace cdmpp {

// One scheduled tensor program shared by all devices (the paper assumes the
// same program set runs everywhere for sampling purposes, §5.3).
struct ProgramRecord {
  int task_id = -1;
  ScheduleDesc schedule;
  CompactAst ast;
};

// One measurement record: a (program, device) pair with ground-truth latency.
struct Sample {
  int program_index = -1;
  int device_id = -1;
  double latency_seconds = 0.0;
};

struct TaskInfo {
  Task task;                    // task.id set to its index
  std::vector<int> model_ids;   // networks containing this task
  std::vector<int> program_indices;  // programs generated for this task
};

struct Dataset {
  std::vector<NetworkDef> networks;  // ops' task.id fields resolved to tasks[]
  std::vector<TaskInfo> tasks;
  std::vector<ProgramRecord> programs;
  std::vector<Sample> samples;

  const Task& TaskOfProgram(int program_index) const;
  // True if the task of this program appears in any of the given models.
  bool ProgramInModels(int program_index, const std::vector<int>& model_ids) const;
  int ModelIdByName(const std::string& name) const;  // -1 if absent
};

struct DatasetOptions {
  std::vector<int> device_ids;    // devices to simulate; default: all nine
  int schedules_per_task = 8;
  double noise_sigma = 0.03;
  uint64_t seed = 42;
  int max_networks = -1;          // cap zoo size for quick tests (-1 = all)
};

// Builds the dataset deterministically from the options.
Dataset BuildDataset(const DatasetOptions& opts);

// Sample-index splits. Hold-out model samples are excluded from all three
// sets and returned separately (paper §7.1: S_hold with 3 networks).
struct SplitIndices {
  std::vector<int> train;
  std::vector<int> valid;
  std::vector<int> test;
  std::vector<int> holdout;
};

// Random 8:1:1 split of samples restricted to `device_ids` (empty = all).
// Samples whose task occurs in a hold-out model go to `holdout`.
SplitIndices SplitDataset(const Dataset& ds, const std::vector<int>& device_ids,
                          const std::vector<int>& holdout_model_ids, Rng* rng,
                          double train_frac = 0.8, double valid_frac = 0.1);

// All sample indices on `device_id` whose task belongs to `model_id`.
std::vector<int> SamplesOfModelOnDevice(const Dataset& ds, int model_id, int device_id);

// All sample indices on `device_id`.
std::vector<int> SamplesOnDevice(const Dataset& ds, int device_id);

}  // namespace cdmpp

#endif  // SRC_DATASET_DATASET_H_

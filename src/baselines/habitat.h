// Habitat-style baseline (Yu et al., ATC'21): one MLP per operator kind over
// operator-level features (shapes, not schedules), plus roofline-model
// scaling to transfer predictions from a source GPU to a target GPU.
//
// Two deliberate fidelity-preserving weaknesses from the paper:
//  * operator-level features cannot distinguish different schedules of the
//    same operator, and
//  * roofline scaling only captures peak-flops/bandwidth ratios between
//    devices (GPUs only).
#ifndef SRC_BASELINES_HABITAT_H_
#define SRC_BASELINES_HABITAT_H_

#include <map>
#include <memory>

#include "src/dataset/dataset.h"
#include "src/nn/layers.h"
#include "src/nn/optimizer.h"

namespace cdmpp {

struct HabitatConfig {
  int hidden_dim = 48;
  double lr = 2e-3;
  int epochs = 60;
  int batch_size = 64;
  uint64_t seed = 17;
};

class HabitatModel {
 public:
  explicit HabitatModel(const HabitatConfig& config);
  ~HabitatModel();

  // Trains per-op-kind MLPs on samples measured on `source_device`.
  void Fit(const Dataset& ds, const std::vector<int>& train, int source_device);

  // Predicts latency (seconds) on the sample's own device: the source-device
  // MLP prediction, roofline-scaled from source to that device.
  std::vector<double> Predict(const Dataset& ds, const std::vector<int>& indices) const;

  // Predicts one operator task on a device (seconds), roofline-scaled when
  // the device differs from the source device.
  double PredictTask(const Task& task, int device_id) const;

 private:
  struct PerOp;

  static std::vector<float> OpFeatures(const Task& task);
  double RooflineScale(const Task& task, int target_device) const;

  HabitatConfig config_;
  int source_device_ = -1;
  std::map<OpKind, std::unique_ptr<PerOp>> per_op_;
  std::unique_ptr<Rng> rng_;
};

}  // namespace cdmpp

#endif  // SRC_BASELINES_HABITAT_H_
